// E13/E14/E15 — Figures 8 and 9, and the relative-integral-unfairness
// metric of §5.3.2.
//
// Sweep the fairness knob f in {0, 0.25, 0.5, 0.75, ->1}:
//   Fig. 8: gains in avg JCT and makespan vs the fair baselines — f around
//           0.25 achieves nearly the best efficiency; even f -> 1 retains
//           sizable gains (picking a well-aligned task within the fair
//           job still packs well).
//   Fig. 9: the unfairness cost — fraction of jobs slowed vs the fair
//           schedulers and avg/max slowdown; f in [0.25, 0.5] slows only a
//           few jobs by a little.
//   §5.3.2: relative integral unfairness — Tetris's fairness violations
//           are transient.
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  // Batch arrival: a standing backlog of jobs is what makes the fairness
  // restriction bind (with staggered arrivals few jobs contend at once);
  // it is also the paper's makespan methodology (§5.3.1).
  const sim::Workload w = bench::facebook_workload(scale, /*arrival=*/0);
  sim::SimConfig cfg = bench::facebook_cluster(scale);
  cfg.collect_fairness = true;
  std::cout << "facebook trace (batch arrival): " << w.jobs.size()
            << " jobs, " << w.total_tasks() << " tasks\n\n";

  sched::SlotScheduler fair;
  sched::DrfScheduler drf;
  const auto r_fair = bench::run_baseline(cfg, w, fair);
  const auto r_drf = bench::run_baseline(cfg, w, drf);

  const double knobs[] = {0.0, 0.25, 0.5, 0.75, 0.95};
  Table fig8({"f", "JCT gain vs fair", "JCT gain vs drf",
              "makespan gain vs fair", "makespan gain vs drf"});
  Table fig9({"f", "% slowed vs fair", "avg slowdown", "max slowdown",
              "% slowed vs drf", "RIU: % jobs < fair", "RIU avg magnitude"});
  std::string csv =
      "f,jct_gain_fair,jct_gain_drf,mk_gain_fair,mk_gain_drf,"
      "slowed_fair,slowed_drf\n";

  for (double f : knobs) {
    core::TetrisConfig tcfg;
    tcfg.fairness_knob = f;
    const auto r = bench::run_tetris(cfg, w, tcfg);
    bench::warn_if_incomplete(r);

    const double jg_fair = analysis::avg_jct_reduction(r_fair, r);
    const double jg_drf = analysis::avg_jct_reduction(r_drf, r);
    const double mg_fair = analysis::makespan_reduction(r_fair, r);
    const double mg_drf = analysis::makespan_reduction(r_drf, r);
    fig8.add_row({format_double(f, 2), format_double(jg_fair, 1) + "%",
                  format_double(jg_drf, 1) + "%",
                  format_double(mg_fair, 1) + "%",
                  format_double(mg_drf, 1) + "%"});

    const auto s_fair = analysis::slowdown_stats(r_fair, r);
    const auto s_drf = analysis::slowdown_stats(r_drf, r);
    const auto riu = analysis::unfairness_stats(r);
    fig9.add_row({format_double(f, 2),
                  format_percent(s_fair.fraction_slowed),
                  format_double(s_fair.avg_slowdown_percent, 1) + "%",
                  format_double(s_fair.max_slowdown_percent, 1) + "%",
                  format_percent(s_drf.fraction_slowed),
                  format_percent(riu.fraction_negative),
                  format_double(riu.avg_negative_magnitude, 3)});
    csv += format_double(f, 2) + "," + format_double(jg_fair, 2) + "," +
           format_double(jg_drf, 2) + "," + format_double(mg_fair, 2) + "," +
           format_double(mg_drf, 2) + "," +
           format_double(100 * s_fair.fraction_slowed, 2) + "," +
           format_double(100 * s_drf.fraction_slowed, 2) + "\n";
  }

  std::cout << "Figure 8 — efficiency vs fairness knob (paper: f~0.25 keeps "
               "nearly all gains; even f->1 gains remain sizable):\n"
            << fig8.to_string() << "\n";
  std::cout << "Figure 9 + §5.3.2 RIU — unfairness cost (paper: f=0.25 slows "
               "only a few % of jobs, by small amounts; RIU negative for few "
               "jobs with small magnitude):\n"
            << fig9.to_string();
  write_file("bench_results/fig8_fig9_fairness_knob.csv", csv);
  return 0;
}
