// E10 — Table 8 (scheduling overheads) plus micro-benchmarks.
//
// The paper measures the resource manager's time to process node-manager
// and application-master heartbeats with 10K / 50K pending tasks and finds
// Tetris comparable to stock YARN (sub-millisecond). We report (a)
// google-benchmark micro-benchmarks of the hot scoring paths and (b) the
// measured per-pass scheduling latency from full simulations at different
// backlog sizes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/harness.h"
#include "core/demand_estimator.h"
#include "tracker/token_bucket.h"

using namespace tetris;

namespace {

void BM_AlignmentScore(benchmark::State& state) {
  const auto kind = static_cast<core::AlignmentKind>(state.range(0));
  const Resources demand = Resources::of(0.2, 0.1, 0.3, 0.4);
  const Resources avail = Resources::of(0.7, 0.9, 0.5, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::alignment_score(kind, demand, avail));
  }
}
BENCHMARK(BM_AlignmentScore)->DenseRange(0, 4);

void BM_PlacementComputation(benchmark::State& state) {
  sim::TaskSpec task;
  task.cpu_cycles = 20;
  task.peak_cores = 2;
  task.peak_mem = 2 * kGB;
  task.output_bytes = 100 * kMB;
  for (int i = 0; i < 4; ++i) {
    sim::InputSplit split;
    split.bytes = 64 * kMB;
    split.replicas = {i, i + 1, i + 2};
    task.inputs.push_back(split);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::compute_placement(task, 7, 42));
  }
}
BENCHMARK(BM_PlacementComputation);

void BM_DemandEstimatorObserve(benchmark::State& state) {
  core::DemandEstimator est;
  sim::TaskReport report;
  report.job = 3;
  report.stage = 1;
  report.template_id = 5;
  report.peak_usage = Resources::of(2, 4 * kGB, 50 * kMB, 10 * kMB);
  report.duration = 12;
  for (auto _ : state) {
    est.observe(report);
  }
}
BENCHMARK(BM_DemandEstimatorObserve);

void BM_TokenBucket(benchmark::State& state) {
  tracker::TokenBucket bucket(100 * kMB, 400 * kMB);
  double now = 0;
  for (auto _ : state) {
    now += 1e-4;
    benchmark::DoNotOptimize(bucket.try_consume(1 * kMB, now));
  }
}
BENCHMARK(BM_TokenBucket);

// Table 8: mean/max per-pass scheduler latency from full runs.
void print_pass_latency_table() {
  std::cout << "\nTable 8 — per-pass scheduling latency (one pass matches "
               "tasks to all machines; the paper reports per-heartbeat RM "
               "costs of ~0.1-1 ms):\n";
  Table t({"scheduler", "backlog (tasks)", "passes", "mean pass (ms)",
           "max pass (ms)", "placements"});
  for (int jobs : {60, 200}) {
    bench::Scale scale;
    scale.jobs = jobs;
    scale.machines = 30;
    const sim::Workload w =
        bench::facebook_workload(scale, /*arrival_window=*/0);
    const sim::SimConfig cfg = bench::facebook_cluster(scale);

    sched::SlotScheduler fair;
    const auto r_fair = bench::run_baseline(cfg, w, fair);
    const auto r_tetris = bench::run_tetris(cfg, w);
    for (const auto* r : {&r_fair, &r_tetris}) {
      const auto& c = r->scheduler_cost;
      t.add_row({r->scheduler_name, std::to_string(w.total_tasks()),
                 std::to_string(c.invocations),
                 format_double(c.mean_seconds() * 1e3, 3),
                 format_double(c.max_seconds * 1e3, 3),
                 std::to_string(c.placements)});
    }
  }
  std::cout << t.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_pass_latency_table();
  return 0;
}
