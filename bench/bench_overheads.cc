// E10 — Table 8 (scheduling overheads) plus micro-benchmarks.
//
// The paper measures the resource manager's time to process node-manager
// and application-master heartbeats with 10K / 50K pending tasks and finds
// Tetris comparable to stock YARN (sub-millisecond). We report (a)
// google-benchmark micro-benchmarks of the hot scoring paths and (b) the
// measured per-pass scheduling latency from full simulations, comparing
// the naive recompute-everything oracle against the optimized hot path
// (DESIGN.md §8) on the same workload — the schedules are bit-identical,
// so the latency gap is pure bookkeeping cost.
//
// Usage: bench_overheads [gbench flags] [jobs] [machines] [seed]
//   jobs/machines size the heavy backlog run (default 230 jobs x 30
//   machines ~ 10K pending tasks at t=0). Per-pass samples land in
//   bench_results/table8_overheads.csv, counter totals in
//   bench_results/table8_perf_counters.csv, the thread sweep in
//   bench_results/table8_threads.csv, the SIMD on/off sweep in
//   bench_results/table8_simd.csv and the trace on/off sweep in
//   bench_results/table8_trace_overhead.csv. All rows are prefixed with
//   scheduler,threads,trace,cells,dispatcher so they are self-describing
//   (cells=0, dispatcher=global: these runs are not federated).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "analysis/export.h"
#include "bench/harness.h"
#include "core/demand_estimator.h"
#include "core/score_kernel.h"
#include "tracker/token_bucket.h"

using namespace tetris;

namespace {

void BM_AlignmentScore(benchmark::State& state) {
  const auto kind = static_cast<core::AlignmentKind>(state.range(0));
  const Resources demand = Resources::of(0.2, 0.1, 0.3, 0.4);
  const Resources avail = Resources::of(0.7, 0.9, 0.5, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::alignment_score(kind, demand, avail));
  }
}
BENCHMARK(BM_AlignmentScore)->DenseRange(0, 4);

void BM_PlacementComputation(benchmark::State& state) {
  sim::TaskSpec task;
  task.cpu_cycles = 20;
  task.peak_cores = 2;
  task.peak_mem = 2 * kGB;
  task.output_bytes = 100 * kMB;
  for (int i = 0; i < 4; ++i) {
    sim::InputSplit split;
    split.bytes = 64 * kMB;
    split.replicas = {i, i + 1, i + 2};
    task.inputs.push_back(split);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::compute_placement(task, 7, 42));
  }
}
BENCHMARK(BM_PlacementComputation);

void BM_DemandEstimatorObserve(benchmark::State& state) {
  core::DemandEstimator est;
  sim::TaskReport report;
  report.job = 3;
  report.stage = 1;
  report.template_id = 5;
  report.peak_usage = Resources::of(2, 4 * kGB, 50 * kMB, 10 * kMB);
  report.duration = 12;
  for (auto _ : state) {
    est.observe(report);
  }
}
BENCHMARK(BM_DemandEstimatorObserve);

void BM_TokenBucket(benchmark::State& state) {
  tracker::TokenBucket bucket(100 * kMB, 400 * kMB);
  double now = 0;
  for (auto _ : state) {
    now += 1e-4;
    benchmark::DoNotOptimize(bucket.try_consume(1 * kMB, now));
  }
}
BENCHMARK(BM_TokenBucket);

// Mean pass latency restricted to the heavy passes (backlog at least
// `cut`): the regime Table 8 talks about. Returns {mean_ms, passes}.
std::pair<double, long> heavy_mean_ms(const sim::SimResult& r, int cut) {
  double total = 0;
  long n = 0;
  for (const auto& s : r.pass_samples) {
    if (s.backlog < cut) continue;
    total += s.seconds;
    n++;
  }
  return {n ? total / static_cast<double>(n) * 1e3 : 0.0, n};
}

// Table 8: naive vs optimized per-pass latency from full runs, plus the
// slot-fair baseline for context. All three drain the same workload; the
// two Tetris runs produce bit-identical schedules (the equivalence test
// enforces it — here we spot-check makespan).
void print_pass_latency_table(const bench::Scale& heavy_scale,
                              std::string* samples_csv,
                              std::string* counters_csv) {
  std::cout << "\nTable 8 — per-pass scheduling latency (one pass matches "
               "tasks to all machines; the paper reports per-heartbeat RM "
               "costs of ~0.1-1 ms). arrival_window=0: every job is "
               "pending at t=0, so the first passes see the full backlog.\n";
  Table t({"scheduler", "backlog (tasks)", "passes", "mean pass (ms)",
           "max pass (ms)", "mean @ heavy backlog (ms)", "placements"});

  bool first = true;
  for (const bench::Scale& scale :
       {bench::Scale{60, heavy_scale.machines, heavy_scale.seed},
        heavy_scale}) {
    const sim::Workload w =
        bench::facebook_workload(scale, /*arrival_window=*/0);
    sim::SimConfig cfg = bench::facebook_cluster(scale);
    cfg.collect_pass_samples = true;
    // Heavy = at least half the workload's tasks still runnable. (The
    // very-first-pass backlog is a single sample and too noisy to quote;
    // this cut keeps enough passes for a stable mean.)
    const int cut = static_cast<int>(0.5 * static_cast<double>(
                                               w.total_tasks()));

    // The schedules are deterministic, so repeated runs do identical
    // work; keeping the repetition with the lowest mean pass latency
    // filters scheduler-exogenous noise (this box is a single shared
    // vCPU) the same way benchmark frameworks report min-of-N.
    constexpr int kReps = 3;
    const auto best_of = [&](auto run_fn) {
      sim::SimResult best;
      for (int rep = 0; rep < kReps; ++rep) {
        sim::SimResult r = run_fn();
        if (rep == 0 || r.scheduler_cost.mean_seconds() <
                            best.scheduler_cost.mean_seconds()) {
          best = std::move(r);
        }
      }
      return best;
    };

    sched::SlotScheduler fair;
    const auto r_fair =
        best_of([&] { return bench::run_baseline(cfg, w, fair); });

    sim::SimConfig naive_cfg = cfg;
    naive_cfg.naive_scheduler_view = true;
    core::TetrisConfig naive_tcfg;
    naive_tcfg.naive_scoring = true;
    naive_tcfg.name = "tetris-naive";
    const auto r_naive =
        best_of([&] { return bench::run_tetris(naive_cfg, w, naive_tcfg); });

    core::TetrisConfig opt_tcfg;
    opt_tcfg.name = "tetris-opt";
    const auto r_opt =
        best_of([&] { return bench::run_tetris(cfg, w, opt_tcfg); });

    if (r_naive.makespan != r_opt.makespan) {
      std::cerr << "ERROR: optimized schedule diverged from naive oracle "
                   "(makespan "
                << r_opt.makespan << " vs " << r_naive.makespan << ")\n";
    }

    for (const auto* r : {&r_fair, &r_naive, &r_opt}) {
      bench::warn_if_incomplete(*r);
      const auto& c = r->scheduler_cost;
      const auto [heavy_ms, heavy_n] = heavy_mean_ms(*r, cut);
      t.add_row({r->scheduler_name, std::to_string(w.total_tasks()),
                 std::to_string(c.invocations),
                 format_double(c.mean_seconds() * 1e3, 3),
                 format_double(c.max_seconds * 1e3, 3),
                 format_double(heavy_ms, 3) + " (" +
                     std::to_string(heavy_n) + "p)",
                 std::to_string(c.placements)});
      const analysis::RunTag tag = bench::run_tag(
          r->scheduler_name + "-" + std::to_string(scale.jobs) + "j", cfg);
      *samples_csv += analysis::pass_samples_csv(tag, *r, first);
      *counters_csv += analysis::perf_counters_csv(tag, *r, first);
      first = false;
    }

    const auto [naive_heavy, nn] = heavy_mean_ms(r_naive, cut);
    const auto [opt_heavy, on] = heavy_mean_ms(r_opt, cut);
    std::cout << "  " << w.total_tasks() << " pending tasks: naive "
              << format_double(r_naive.scheduler_cost.mean_seconds() * 1e3, 3)
              << " ms/pass vs optimized "
              << format_double(r_opt.scheduler_cost.mean_seconds() * 1e3, 3)
              << " ms/pass ("
              << format_double(r_naive.scheduler_cost.mean_seconds() /
                                   std::max(1e-12,
                                            r_opt.scheduler_cost
                                                .mean_seconds()),
                               2)
              << "x overall";
    if (nn > 0 && on > 0 && opt_heavy > 0) {
      std::cout << ", " << format_double(naive_heavy / opt_heavy, 2)
                << "x at >=" << cut << "-task backlog";
    }
    std::cout << ")\n";
  }
  std::cout << t.to_string();
}

// Thread-scaling sweep (DESIGN.md §9): the optimized pass at 1, 2, 4 and
// 8 workers against the serial scan, heavy scale only. Schedules are
// bit-identical by construction (spot-checked on makespan), so the only
// moving number is pass latency — which also captures the dispatch and
// reduction overhead the sharded path pays on a small machine.
void print_thread_scaling_table(const bench::Scale& heavy_scale,
                                std::string* threads_csv) {
  std::cout << "\nThread scaling — optimized pass, "
            << "serial scan vs sharded scan (DESIGN.md §9). Same workload, "
               "bit-identical schedules; latency is the only difference.\n";
  Table t({"threads", "backlog (tasks)", "passes", "mean pass (ms)",
           "mean @ heavy backlog (ms)", "max pass (ms)",
           "reduction total (ms)", "makespan (s)"});
  *threads_csv =
      "scheduler,threads,trace,cells,dispatcher,"
      "backlog_tasks,passes,mean_pass_ms,"
      "heavy_mean_pass_ms,max_pass_ms,parallel_passes,reduction_total_ms,"
      "makespan\n";

  const sim::Workload w =
      bench::facebook_workload(heavy_scale, /*arrival_window=*/0);
  sim::SimConfig cfg = bench::facebook_cluster(heavy_scale);
  cfg.collect_pass_samples = true;
  const int cut =
      static_cast<int>(0.5 * static_cast<double>(w.total_tasks()));

  constexpr int kReps = 3;
  double serial_makespan = -1;
  for (const int threads : {0, 1, 2, 4, 8}) {
    sim::SimResult best;
    for (int rep = 0; rep < kReps; ++rep) {
      core::TetrisConfig tcfg;
      tcfg.name = "tetris-opt";
      tcfg.num_threads = threads;
      sim::SimResult r = bench::run_tetris(cfg, w, tcfg);
      if (rep == 0 || r.scheduler_cost.mean_seconds() <
                          best.scheduler_cost.mean_seconds()) {
        best = std::move(r);
      }
    }
    bench::warn_if_incomplete(best);
    if (threads == 0) {
      serial_makespan = best.makespan;
    } else if (best.makespan != serial_makespan) {
      std::cerr << "ERROR: " << threads
                << "-thread schedule diverged from serial (makespan "
                << best.makespan << " vs " << serial_makespan << ")\n";
    }
    const auto& c = best.scheduler_cost;
    const auto [heavy_ms, heavy_n] = heavy_mean_ms(best, cut);
    const double reduction_ms =
        static_cast<double>(best.perf.reduction_nanos) * 1e-6;
    t.add_row({threads == 0 ? "serial" : std::to_string(threads),
               std::to_string(w.total_tasks()), std::to_string(c.invocations),
               format_double(c.mean_seconds() * 1e3, 3),
               format_double(heavy_ms, 3) + " (" + std::to_string(heavy_n) +
                   "p)",
               format_double(c.max_seconds * 1e3, 3),
               format_double(reduction_ms, 3),
               format_double(best.makespan, 1)});
    *threads_csv += "tetris-opt," + std::to_string(threads) +
                    ",0,0,global," +
                    std::to_string(w.total_tasks()) + "," +
                    std::to_string(c.invocations) + "," +
                    format_double(c.mean_seconds() * 1e3, 4) + "," +
                    format_double(heavy_ms, 4) + "," +
                    format_double(c.max_seconds * 1e3, 4) + "," +
                    std::to_string(best.perf.parallel_passes) + "," +
                    format_double(reduction_ms, 4) + "," +
                    format_double(best.makespan, 3) + "\n";
  }
  std::cout << t.to_string();
}

// SIMD sweep (DESIGN.md §12): the optimized pass with the SoA batch
// kernel off vs on, serial and 8-thread, heavy scale. The kernel is
// bit-identical to the scalar scan (the equivalence matrix enforces it;
// spot-checked here on makespan), so the only moving number is pass
// latency. The acceptance bar is >=1.5x on the heavy-backlog mean at the
// 10K-task scale.
void print_simd_table(const bench::Scale& heavy_scale,
                      std::string* simd_csv) {
  std::cout << "\nSIMD scoring kernel — scalar scan vs SoA batch kernel ("
            << core::simd::isa_name() << ", "
            << core::simd::lane_width()
            << " lanes; DESIGN.md §12). Same workload, bit-identical "
               "schedules; latency is the only difference.\n";
  Table t({"threads", "simd", "passes", "mean pass (ms)",
           "mean @ heavy backlog (ms)", "max pass (ms)", "simd blocks",
           "scalar tail", "speedup @ heavy"});
  *simd_csv =
      "scheduler,threads,trace,cells,dispatcher,"
      "simd,isa,lanes,backlog_tasks,passes,"
      "mean_pass_ms,heavy_mean_pass_ms,max_pass_ms,score_evals,"
      "simd_blocks,scalar_tail_evals,heavy_speedup,makespan\n";

  const sim::Workload w =
      bench::facebook_workload(heavy_scale, /*arrival_window=*/0);
  sim::SimConfig cfg = bench::facebook_cluster(heavy_scale);
  cfg.collect_pass_samples = true;
  const int cut =
      static_cast<int>(0.5 * static_cast<double>(w.total_tasks()));

  constexpr int kReps = 3;
  for (const int threads : {0, 8}) {
    double off_heavy_ms = 0;
    double off_makespan = -1;
    for (const core::SimdMode simd :
         {core::SimdMode::kOff, core::SimdMode::kOn}) {
      const bool on = simd == core::SimdMode::kOn;
      sim::SimResult best;
      for (int rep = 0; rep < kReps; ++rep) {
        core::TetrisConfig tcfg;
        tcfg.name = std::string("tetris-simd-") + (on ? "on" : "off");
        tcfg.num_threads = threads;
        tcfg.simd = simd;
        sim::SimResult r = bench::run_tetris(cfg, w, tcfg);
        if (rep == 0 || r.scheduler_cost.mean_seconds() <
                            best.scheduler_cost.mean_seconds()) {
          best = std::move(r);
        }
      }
      bench::warn_if_incomplete(best);
      if (!on) {
        off_makespan = best.makespan;
      } else if (best.makespan != off_makespan) {
        std::cerr << "ERROR: simd=on schedule diverged from simd=off "
                     "(makespan "
                  << best.makespan << " vs " << off_makespan << ")\n";
      }
      const auto& c = best.scheduler_cost;
      const auto [heavy_ms, heavy_n] = heavy_mean_ms(best, cut);
      if (!on) off_heavy_ms = heavy_ms;
      const double speedup =
          on && heavy_ms > 0 ? off_heavy_ms / heavy_ms : 0.0;
      t.add_row({threads == 0 ? "serial" : std::to_string(threads),
                 on ? "on" : "off", std::to_string(c.invocations),
                 format_double(c.mean_seconds() * 1e3, 3),
                 format_double(heavy_ms, 3) + " (" +
                     std::to_string(heavy_n) + "p)",
                 format_double(c.max_seconds * 1e3, 3),
                 std::to_string(best.perf.simd_blocks),
                 std::to_string(best.perf.scalar_tail_evals),
                 on ? format_double(speedup, 2) + "x" : "-"});
      *simd_csv += std::string("tetris-simd-") + (on ? "on" : "off") + "," +
                   std::to_string(threads) + ",0,0,global," +
                   (on ? "1" : "0") + "," +
                   std::string(core::simd::isa_name()) + "," +
                   std::to_string(core::simd::lane_width()) + "," +
                   std::to_string(w.total_tasks()) + "," +
                   std::to_string(c.invocations) + "," +
                   format_double(c.mean_seconds() * 1e3, 4) + "," +
                   format_double(heavy_ms, 4) + "," +
                   format_double(c.max_seconds * 1e3, 4) + "," +
                   std::to_string(best.perf.score_evals) + "," +
                   std::to_string(best.perf.simd_blocks) + "," +
                   std::to_string(best.perf.scalar_tail_evals) + "," +
                   format_double(speedup, 3) + "," +
                   format_double(best.makespan, 3) + "\n";
    }
  }
  std::cout << t.to_string();
}

// Trace-overhead sweep (DESIGN.md §10): the optimized pass with event
// tracing off vs on, serial and 8-thread, heavy scale. Tracing must not
// change decisions (spot-checked on makespan; the replay tests enforce
// event-level equality), so the only number that may move is pass
// latency — the acceptance bar is <2% on the heavy-backlog mean.
void print_trace_overhead_table(const bench::Scale& heavy_scale,
                                std::string* trace_csv) {
  std::cout << "\nTrace overhead — optimized pass with the event recorder "
               "off vs on (DESIGN.md §10). Identical schedules; the delta "
               "is the cost of recording placements, passes and task "
               "lifecycle events.\n";
  Table t({"threads", "trace", "passes", "mean pass (ms)",
           "mean @ heavy backlog (ms)", "max pass (ms)", "events",
           "overhead @ heavy (%)"});
  *trace_csv =
      "scheduler,threads,trace,cells,dispatcher,"
      "backlog_tasks,passes,mean_pass_ms,"
      "heavy_mean_pass_ms,max_pass_ms,events,dropped,heavy_overhead_pct,"
      "makespan\n";

  const sim::Workload w =
      bench::facebook_workload(heavy_scale, /*arrival_window=*/0);
  const int cut =
      static_cast<int>(0.5 * static_cast<double>(w.total_tasks()));

  constexpr int kReps = 3;
  for (const int threads : {0, 8}) {
    double off_heavy_ms = 0;
    double off_makespan = -1;
    for (const bool traced : {false, true}) {
      sim::SimConfig cfg = bench::facebook_cluster(heavy_scale);
      cfg.collect_pass_samples = true;
      cfg.trace.enabled = traced;
      // Large enough that nothing is dropped mid-run: the comparison
      // should price recording, not ring-buffer recycling.
      cfg.trace.max_chunks_per_thread = 4096;

      sim::SimResult best;
      for (int rep = 0; rep < kReps; ++rep) {
        core::TetrisConfig tcfg;
        tcfg.name = "tetris-opt";
        tcfg.num_threads = threads;
        sim::SimResult r = bench::run_tetris(cfg, w, tcfg);
        if (rep == 0 || r.scheduler_cost.mean_seconds() <
                            best.scheduler_cost.mean_seconds()) {
          best = std::move(r);
        }
      }
      bench::warn_if_incomplete(best);
      if (!traced) {
        off_makespan = best.makespan;
      } else if (best.makespan != off_makespan) {
        std::cerr << "ERROR: traced run diverged from untraced (makespan "
                  << best.makespan << " vs " << off_makespan << ")\n";
      }
      const auto& c = best.scheduler_cost;
      const auto [heavy_ms, heavy_n] = heavy_mean_ms(best, cut);
      if (!traced) off_heavy_ms = heavy_ms;
      const double overhead_pct =
          traced && off_heavy_ms > 0
              ? (heavy_ms - off_heavy_ms) / off_heavy_ms * 100.0
              : 0.0;
      const std::size_t events = best.trace_log.events.size();
      t.add_row({threads == 0 ? "serial" : std::to_string(threads),
                 traced ? "on" : "off", std::to_string(c.invocations),
                 format_double(c.mean_seconds() * 1e3, 3),
                 format_double(heavy_ms, 3) + " (" +
                     std::to_string(heavy_n) + "p)",
                 format_double(c.max_seconds * 1e3, 3),
                 std::to_string(events),
                 traced ? format_double(overhead_pct, 2) : "-"});
      *trace_csv += "tetris-opt," + std::to_string(threads) + "," +
                    (traced ? "1," : "0,") + "0,global," +
                    std::to_string(w.total_tasks()) + "," +
                    std::to_string(c.invocations) + "," +
                    format_double(c.mean_seconds() * 1e3, 4) + "," +
                    format_double(heavy_ms, 4) + "," +
                    format_double(c.max_seconds * 1e3, 4) + "," +
                    std::to_string(events) + "," +
                    std::to_string(best.trace_log.dropped) + "," +
                    format_double(overhead_pct, 3) + "," +
                    format_double(best.makespan, 3) + "\n";
    }
  }
  std::cout << t.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::Scale def;
  def.jobs = 230;  // ~10K tasks at t=0 on the default Facebook mix
  def.machines = 30;
  const bench::Scale scale = bench::Scale::from_args(argc, argv, def);

  std::string samples_csv;
  std::string counters_csv;
  print_pass_latency_table(scale, &samples_csv, &counters_csv);
  write_file("bench_results/table8_overheads.csv", samples_csv);
  write_file("bench_results/table8_perf_counters.csv", counters_csv);

  std::string threads_csv;
  print_thread_scaling_table(scale, &threads_csv);
  write_file("bench_results/table8_threads.csv", threads_csv);

  std::string simd_csv;
  print_simd_table(scale, &simd_csv);
  write_file("bench_results/table8_simd.csv", simd_csv);

  std::string trace_csv;
  print_trace_overhead_table(scale, &trace_csv);
  write_file("bench_results/table8_trace_overhead.csv", trace_csv);
  return 0;
}
