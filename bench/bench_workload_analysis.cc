// E2/E3/E4 — Tables 2 and 3, Figure 2 (paper §2.2).
//
// Table 2: task demands across resources are essentially uncorrelated.
// Table 3: multiple resources become "tight" (usage above a fraction of
//          capacity), at different machines and times, under the incumbent
//          slot-based fair scheduler.
// Figure 2: heatmaps of task demands — orders-of-magnitude diversity.
#include <iostream>

#include "analysis/workload_analysis.h"
#include "bench/harness.h"
#include "sched/slot_scheduler.h"

using namespace tetris;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::from_args(argc, argv);
  const sim::Workload w = bench::facebook_workload(scale);
  const auto samples = analysis::collect_demand_samples(w);
  std::cout << "Facebook-like trace: " << w.jobs.size() << " jobs, "
            << samples.size() << " tasks\n\n";

  // --- §2.2.2 coefficient of variation (paper: 1.52, 1.6, 2.6, 1.9) ---
  const auto covs = analysis::demand_covs(samples);
  Table cov_t({"attribute", "coefficient of variation", "paper"});
  const char* names[] = {"cores", "memory", "disk", "network"};
  const char* paper_cov[] = {"1.52", "1.60", "2.60", "1.90"};
  for (int i = 0; i < 4; ++i) {
    cov_t.add_row({names[i], format_double(covs[static_cast<std::size_t>(i)], 2),
                   paper_cov[i]});
  }
  std::cout << "Demand diversity (cf. §2.2.2):\n" << cov_t.to_string() << "\n";

  // --- Table 2: correlation matrix ---
  const auto corr = analysis::demand_correlations(samples);
  Table corr_t({"", "cores", "memory", "disk", "network"});
  for (int i = 0; i < 4; ++i) {
    std::vector<std::string> row = {names[i]};
    for (int j = 0; j < 4; ++j) {
      row.push_back(j <= i ? "-"
                           : format_double(corr[static_cast<std::size_t>(i)]
                                               [static_cast<std::size_t>(j)],
                                           2));
    }
    corr_t.add_row(row);
  }
  std::cout << "Table 2 — correlation of task resource demands (paper: all "
               "within [-0.12, 0.3]):\n"
            << corr_t.to_string() << "\n";

  // --- Figure 2: demand heatmaps (written as CSV for plotting) ---
  const char* heat_names[] = {"mem", "disk", "net"};
  for (int a = 0; a < 3; ++a) {
    const auto h = analysis::demand_heatmap(samples, a);
    const std::string path = std::string("bench_results/fig2_heatmap_cores_") +
                             heat_names[a] + ".csv";
    write_file(path, h.to_csv());
    std::cout << "Figure 2 heatmap (cores vs " << heat_names[a] << "): "
              << h.total() << " tasks binned -> " << path << "\n";
  }
  std::cout << "\n";

  // --- Table 3: resource tightness under the incumbent scheduler ---
  sim::SimConfig cfg = bench::facebook_cluster(scale);
  cfg.collect_timeline = true;
  cfg.timeline_period = 5.0;
  sched::SlotScheduler slot;
  const auto r = bench::run_baseline(cfg, w, slot);
  bench::warn_if_incomplete(r);

  Table tight({"resource", "P(>60% used)", "P(>80% used)", "P(>95% used)"});
  const auto t60 = analysis::tightness(r, 0.60);
  const auto t80 = analysis::tightness(r, 0.80);
  const auto t95 = analysis::tightness(r, 0.95);
  for (Resource res : all_resources()) {
    const auto i = static_cast<std::size_t>(res);
    tight.add_row({std::string(resource_name(res)), format_double(t60[i], 3),
                   format_double(t80[i], 3), format_double(t95[i], 3)});
  }
  std::cout << "Table 3 — tightness of resources under slot-based fair "
               "scheduling:\n"
            << tight.to_string();
  std::cout << "(paper: several resources tight at different times; no "
               "single resource dominates)\n";
  return 0;
}
