// E21 (extension) — cross-rack oversubscription sweep.
//
// Paper Table 1 records the network context of the evaluated clusters:
// Bing's core is oversubscribed by <2x, Facebook's by ~10x. The scarcer
// cross-rack bandwidth is, the more it matters that the scheduler treats
// the network as a packed resource. This bench sweeps the oversubscription
// factor on a racked cluster and reports Tetris's gains over the slot-based
// fair scheduler and DRF (both blind to network, hence to uplinks too).
#include <iostream>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  auto def = bench::Scale{};
  def.jobs = 100;
  def.machines = 32;
  const auto scale = bench::Scale::from_args(argc, argv, def);
  const sim::Workload w = bench::facebook_workload(scale, /*arrival=*/1000,
                                                   /*task_scale=*/0.8);
  std::cout << "facebook trace: " << w.jobs.size() << " jobs, "
            << w.total_tasks() << " tasks on " << scale.machines
            << " machines in racks of 8\n\n";

  Table t({"oversubscription", "JCT gain vs fair", "makespan gain vs fair",
           "JCT gain vs drf", "makespan gain vs drf"});
  std::string csv = "oversub,jct_fair,mk_fair,jct_drf,mk_drf\n";
  for (double oversub : {1.0, 2.0, 5.0, 10.0}) {
    sim::SimConfig cfg = bench::facebook_cluster(scale);
    cfg.machines_per_rack = 8;
    cfg.rack_oversubscription = oversub;

    sched::SlotScheduler fair;
    sched::DrfScheduler drf;
    const auto r_fair = bench::run_baseline(cfg, w, fair);
    const auto r_drf = bench::run_baseline(cfg, w, drf);
    const auto r_tetris = bench::run_tetris(cfg, w);
    for (const auto* r : {&r_fair, &r_drf, &r_tetris})
      bench::warn_if_incomplete(*r);

    const double jf = analysis::avg_jct_reduction(r_fair, r_tetris);
    const double mf = analysis::makespan_reduction(r_fair, r_tetris);
    const double jd = analysis::avg_jct_reduction(r_drf, r_tetris);
    const double md = analysis::makespan_reduction(r_drf, r_tetris);
    t.add_row({format_double(oversub, 0) + "x", format_double(jf, 1) + "%",
               format_double(mf, 1) + "%", format_double(jd, 1) + "%",
               format_double(md, 1) + "%"});
    csv += format_double(oversub, 1) + "," + format_double(jf, 2) + "," +
           format_double(mf, 2) + "," + format_double(jd, 2) + "," +
           format_double(md, 2) + "\n";
  }
  std::cout << "Cross-rack oversubscription sweep (extension; Table 1 "
               "context — packing the network matters more as the core gets "
               "scarcer):\n"
            << t.to_string();
  write_file("bench_results/oversubscription.csv", csv);
  return 0;
}
