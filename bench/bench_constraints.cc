// E25 (extension) — packing under placement constraints (DESIGN.md §13).
//
// The paper's packing argument assumes every task may run anywhere; real
// clusters pin stages to machine classes, spread services one-per-machine
// and hold shuffle readers near their data. This bench quantifies what
// those constraints cost a packer, sweeping constraint intensity over one
// identical job population on a heterogeneous cluster (gpu / highmem /
// general classes, 4-machine racks):
//   * packing-quality loss vs. unconstrained — Tetris at intensity k
//     compared with Tetris at intensity 0: makespan, average utilization,
//     fragmentation;
//   * Tetris vs. the randomized constrained-placement baseline at the
//     same intensity — the gap the alignment heuristic retains once both
//     sides obey the same constraints.
// Fragmentation here is 1 minus the busy-period mean of the dominant
// per-sample utilization: capacity that stayed idle while work was
// pending because no admissible machine could hold the right shape.
#include <iostream>
#include <string>

#include "bench/harness.h"
#include "sched/constrained_random_scheduler.h"
#include "workload/constrained.h"

using namespace tetris;

namespace {

// Busy-period utilization summary from the collect_timeline samples.
struct UtilSummary {
  double avg_cpu = 0;
  double avg_mem = 0;
  double fragmentation = 0;
};

UtilSummary util_summary(const sim::SimResult& r) {
  UtilSummary s;
  int busy = 0;
  double dom_sum = 0;
  for (const auto& sample : r.timeline) {
    if (sample.running_tasks <= 0) continue;
    busy++;
    s.avg_cpu += sample.utilization[static_cast<int>(Resource::kCpu)];
    s.avg_mem += sample.utilization[static_cast<int>(Resource::kMem)];
    double dom = 0;
    for (double u : sample.utilization) dom = std::max(dom, u);
    dom_sum += dom;
  }
  if (busy > 0) {
    s.avg_cpu /= busy;
    s.avg_mem /= busy;
    s.fragmentation = 1.0 - dom_sum / busy;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  auto def = bench::Scale{};
  def.jobs = 60;
  def.machines = 24;
  const auto scale = bench::Scale::from_args(argc, argv, def);

  // Heterogeneous cluster: gpu on every 4th machine, highmem on every 3rd
  // (offset 1), 4-machine racks. With these periods every rack holds at
  // least one gpu and one non-gpu highmem machine, so every constraint
  // combination the generator rolls stays statically feasible.
  sim::SimConfig base = bench::facebook_cluster(scale);
  base.machine_labels = workload::make_class_labels(scale.machines);
  base.machines_per_rack = 4;
  base.collect_timeline = true;
  base.timeline_period = 5.0;

  workload::ConstrainedSuiteConfig wcfg;
  wcfg.base.num_jobs = scale.jobs;
  wcfg.base.num_machines = scale.machines;
  wcfg.base.task_scale = 0.1;
  // Batch arrival: all jobs pending at t=0, so makespan measures packing
  // quality directly instead of tracking the arrival window.
  wcfg.base.arrival_window = 0;
  wcfg.base.seed = scale.seed;

  std::cout << "constraint sweep: " << scale.jobs << " jobs, "
            << scale.machines
            << " machines (gpu every 4th, highmem every 3rd, racks of 4)\n\n";

  Table t({"intensity", "scheduler", "avg JCT (s)", "makespan (s)",
           "avg cpu util", "avg mem util", "fragmentation", "infeasible",
           "makespan loss vs unconstrained", "JCT gain vs random"});
  std::string csv =
      "intensity,scheduler,avg_jct,makespan,avg_util_cpu,avg_util_mem,"
      "fragmentation,infeasible_groups,makespan_loss_vs_unconstrained_pct,"
      "jct_gain_vs_random_pct\n";

  double unconstrained_makespan = 0;  // Tetris at intensity 0
  for (double intensity : {0.0, 0.5, 1.0, 2.0}) {
    wcfg.intensity = intensity;
    const sim::Workload w = workload::make_constrained_suite(wcfg);

    sched::ConstrainedRandomScheduler random(scale.seed);
    const auto r_random = bench::run_baseline(base, w, random);
    const auto r_tetris = bench::run_tetris(base, w);
    if (intensity == 0.0) unconstrained_makespan = r_tetris.makespan;

    for (const auto* r : {&r_random, &r_tetris}) {
      if (r->infeasible.empty()) bench::warn_if_incomplete(*r);
      const auto u = util_summary(*r);
      const double loss = 100.0 * (r->makespan - unconstrained_makespan) /
                          unconstrained_makespan;
      const double gain = analysis::avg_jct_reduction(r_random, *r);
      t.add_row({format_double(intensity, 1), r->scheduler_name,
                 format_double(r->avg_jct(), 1),
                 format_double(r->makespan, 1), format_double(u.avg_cpu, 3),
                 format_double(u.avg_mem, 3),
                 format_double(u.fragmentation, 3),
                 std::to_string(r->infeasible.size()),
                 format_double(loss, 1) + "%",
                 format_double(gain, 1) + "%"});
      csv += format_double(intensity, 2) + "," + r->scheduler_name + "," +
             format_double(r->avg_jct(), 2) + "," +
             format_double(r->makespan, 2) + "," +
             format_double(u.avg_cpu, 4) + "," + format_double(u.avg_mem, 4) +
             "," + format_double(u.fragmentation, 4) + "," +
             std::to_string(r->infeasible.size()) + "," +
             format_double(loss, 2) + "," + format_double(gain, 2) + "\n";
    }
  }

  std::cout << "Placement-constraint sweep — Tetris vs randomized "
               "constrained placement:\n"
            << t.to_string() << "\n";
  std::cout << "(expected: makespan and fragmentation degrade as intensity "
               "grows — constrained stages can only pack inside their "
               "class pools — while Tetris keeps a clear JCT/makespan edge "
               "over randomized placement at every intensity)\n";
  write_file("bench_results/constraints_sweep.csv", csv);
  return 0;
}
