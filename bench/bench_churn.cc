// E23 (extension) — machine churn: packing under failures.
//
// The paper's deployment treats machine failure and the ensuing
// re-replication as routine background events (§4.3); the simulator's
// churn subsystem injects them. Sweep the failure rate (per-machine MTTF,
// exponential, with a fixed MTTR) across schedulers and check that
// Tetris's packing advantage persists when the cluster keeps losing and
// regaining machines: kills cost every scheduler the same lost attempts,
// but a packer re-fills the survivors' capacity tighter.
#include <iostream>
#include <string>

#include "bench/harness.h"

using namespace tetris;

int main(int argc, char** argv) {
  auto def = bench::Scale{};
  def.jobs = 80;
  def.machines = 20;
  const auto scale = bench::Scale::from_args(argc, argv, def);

  const sim::Workload w = bench::facebook_workload(scale);
  const sim::SimConfig base = bench::facebook_cluster(scale);
  std::cout << "facebook trace: " << w.jobs.size() << " jobs, "
            << w.total_tasks() << " tasks, " << scale.machines
            << " machines; churn MTTR fixed at 120 s\n\n";

  Table t({"MTTF (s)", "scheduler", "avg JCT (s)", "makespan (s)",
           "attempts lost", "work lost (s)", "eff. capacity",
           "JCT gain vs fair"});
  std::string csv =
      "mttf,scheduler,avg_jct,makespan,machines_failed,attempts_lost,"
      "read_failovers,work_lost_seconds,effective_capacity,"
      "jct_gain_vs_fair\n";

  // mttf = 0 disables churn: the no-failure baseline row. The sweep stops
  // at 1000 s: below that, the trace's heavy-tailed multi-thousand-second
  // tasks outlive nearly every machine up-window and the runs degenerate
  // into retry livelock (real systems checkpoint; this simulator retries
  // from scratch).
  for (double mttf : {0.0, 6000.0, 2000.0, 1000.0}) {
    sim::SimConfig cfg = base;
    cfg.churn.mttf = mttf;
    cfg.churn.mttr = mttf > 0 ? 120.0 : 0.0;

    sched::SlotScheduler fair;
    sched::DrfScheduler drf;
    sched::SrtfScheduler srtf;
    const auto r_fair = bench::run_baseline(cfg, w, fair);
    const auto r_drf = bench::run_baseline(cfg, w, drf);
    const auto r_srtf = bench::run_baseline(cfg, w, srtf);
    const auto r_tetris = bench::run_tetris(cfg, w);

    for (const auto* r : {&r_fair, &r_drf, &r_srtf, &r_tetris}) {
      bench::warn_if_incomplete(*r);
      const auto s = analysis::churn_summary(*r);
      const double gain = analysis::avg_jct_reduction(r_fair, *r);
      t.add_row({format_double(mttf, 0), r->scheduler_name,
                 format_double(r->avg_jct(), 1),
                 format_double(r->makespan, 1),
                 std::to_string(s.task_attempts_lost),
                 format_double(s.work_lost_seconds, 1),
                 format_double(s.effective_capacity, 3),
                 format_double(gain, 1) + "%"});
      csv += format_double(mttf, 0) + "," + r->scheduler_name + "," +
             format_double(r->avg_jct(), 2) + "," +
             format_double(r->makespan, 2) + "," +
             std::to_string(s.machines_failed) + "," +
             std::to_string(s.task_attempts_lost) + "," +
             std::to_string(s.read_failovers) + "," +
             format_double(s.work_lost_seconds, 2) + "," +
             format_double(s.effective_capacity, 4) + "," +
             format_double(gain, 2) + "\n";
    }
  }

  std::cout << "Machine churn sweep — schedulers x failure rate:\n"
            << t.to_string() << "\n";
  std::cout << "(expected: all schedulers lose comparable work to kills, "
               "but Tetris keeps a JCT edge because it re-packs the "
               "surviving machines tighter; effective capacity falls as "
               "MTTF shrinks and every run still drains)\n";
  write_file("bench_results/churn_sweep.csv", csv);
  return 0;
}
