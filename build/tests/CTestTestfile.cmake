# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_resources_test[1]_include.cmake")
include("/root/repo/build/tests/util_rng_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/util_table_test[1]_include.cmake")
include("/root/repo/build/tests/sim_spec_test[1]_include.cmake")
include("/root/repo/build/tests/sim_placement_test[1]_include.cmake")
include("/root/repo/build/tests/sim_machine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/tracker_token_bucket_test[1]_include.cmake")
include("/root/repo/build/tests/tracker_resource_tracker_test[1]_include.cmake")
include("/root/repo/build/tests/sched_fairness_test[1]_include.cmake")
include("/root/repo/build/tests/sched_schedulers_test[1]_include.cmake")
include("/root/repo/build/tests/core_alignment_test[1]_include.cmake")
include("/root/repo/build/tests/core_demand_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/core_tetris_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/workload_trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_export_test[1]_include.cmake")
include("/root/repo/build/tests/sim_simulator_advanced_test[1]_include.cmake")
include("/root/repo/build/tests/sched_queue_fairness_test[1]_include.cmake")
include("/root/repo/build/tests/sim_rack_test[1]_include.cmake")
include("/root/repo/build/tests/sched_common_test[1]_include.cmake")
include("/root/repo/build/tests/workload_bing_test[1]_include.cmake")
include("/root/repo/build/tests/integration_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_churn_test[1]_include.cmake")
include("/root/repo/build/tests/sched_upper_bound_test[1]_include.cmake")
