file(REMOVE_RECURSE
  "CMakeFiles/sim_simulator_advanced_test.dir/sim/simulator_advanced_test.cc.o"
  "CMakeFiles/sim_simulator_advanced_test.dir/sim/simulator_advanced_test.cc.o.d"
  "sim_simulator_advanced_test"
  "sim_simulator_advanced_test.pdb"
  "sim_simulator_advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_simulator_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
