# Empty compiler generated dependencies file for sim_simulator_advanced_test.
# This may be replaced when dependencies are built.
