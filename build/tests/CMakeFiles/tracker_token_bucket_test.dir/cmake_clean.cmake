file(REMOVE_RECURSE
  "CMakeFiles/tracker_token_bucket_test.dir/tracker/token_bucket_test.cc.o"
  "CMakeFiles/tracker_token_bucket_test.dir/tracker/token_bucket_test.cc.o.d"
  "tracker_token_bucket_test"
  "tracker_token_bucket_test.pdb"
  "tracker_token_bucket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracker_token_bucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
