# Empty dependencies file for tracker_token_bucket_test.
# This may be replaced when dependencies are built.
