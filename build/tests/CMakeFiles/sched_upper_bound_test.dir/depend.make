# Empty dependencies file for sched_upper_bound_test.
# This may be replaced when dependencies are built.
