
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/upper_bound_test.cc" "tests/CMakeFiles/sched_upper_bound_test.dir/sched/upper_bound_test.cc.o" "gcc" "tests/CMakeFiles/sched_upper_bound_test.dir/sched/upper_bound_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tetris_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tetris_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tetris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tetris_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tetris_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/tracker/CMakeFiles/tetris_tracker.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tetris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
