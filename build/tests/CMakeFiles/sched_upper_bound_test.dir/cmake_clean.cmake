file(REMOVE_RECURSE
  "CMakeFiles/sched_upper_bound_test.dir/sched/upper_bound_test.cc.o"
  "CMakeFiles/sched_upper_bound_test.dir/sched/upper_bound_test.cc.o.d"
  "sched_upper_bound_test"
  "sched_upper_bound_test.pdb"
  "sched_upper_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_upper_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
