# Empty dependencies file for sched_fairness_test.
# This may be replaced when dependencies are built.
