file(REMOVE_RECURSE
  "CMakeFiles/sched_fairness_test.dir/sched/fairness_test.cc.o"
  "CMakeFiles/sched_fairness_test.dir/sched/fairness_test.cc.o.d"
  "sched_fairness_test"
  "sched_fairness_test.pdb"
  "sched_fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
