file(REMOVE_RECURSE
  "CMakeFiles/sched_schedulers_test.dir/sched/schedulers_test.cc.o"
  "CMakeFiles/sched_schedulers_test.dir/sched/schedulers_test.cc.o.d"
  "sched_schedulers_test"
  "sched_schedulers_test.pdb"
  "sched_schedulers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_schedulers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
