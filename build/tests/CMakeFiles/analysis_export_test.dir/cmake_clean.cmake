file(REMOVE_RECURSE
  "CMakeFiles/analysis_export_test.dir/analysis/export_test.cc.o"
  "CMakeFiles/analysis_export_test.dir/analysis/export_test.cc.o.d"
  "analysis_export_test"
  "analysis_export_test.pdb"
  "analysis_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
