# Empty compiler generated dependencies file for tracker_resource_tracker_test.
# This may be replaced when dependencies are built.
