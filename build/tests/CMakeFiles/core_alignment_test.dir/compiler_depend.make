# Empty compiler generated dependencies file for core_alignment_test.
# This may be replaced when dependencies are built.
