# Empty dependencies file for util_resources_test.
# This may be replaced when dependencies are built.
