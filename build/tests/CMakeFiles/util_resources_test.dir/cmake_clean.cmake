file(REMOVE_RECURSE
  "CMakeFiles/util_resources_test.dir/util/resources_test.cc.o"
  "CMakeFiles/util_resources_test.dir/util/resources_test.cc.o.d"
  "util_resources_test"
  "util_resources_test.pdb"
  "util_resources_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_resources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
