# Empty compiler generated dependencies file for workload_bing_test.
# This may be replaced when dependencies are built.
