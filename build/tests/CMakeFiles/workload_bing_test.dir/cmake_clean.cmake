file(REMOVE_RECURSE
  "CMakeFiles/workload_bing_test.dir/workload/bing_test.cc.o"
  "CMakeFiles/workload_bing_test.dir/workload/bing_test.cc.o.d"
  "workload_bing_test"
  "workload_bing_test.pdb"
  "workload_bing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_bing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
