# Empty dependencies file for sched_common_test.
# This may be replaced when dependencies are built.
