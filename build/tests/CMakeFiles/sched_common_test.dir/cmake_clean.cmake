file(REMOVE_RECURSE
  "CMakeFiles/sched_common_test.dir/sched/common_test.cc.o"
  "CMakeFiles/sched_common_test.dir/sched/common_test.cc.o.d"
  "sched_common_test"
  "sched_common_test.pdb"
  "sched_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
