# Empty dependencies file for core_demand_estimator_test.
# This may be replaced when dependencies are built.
