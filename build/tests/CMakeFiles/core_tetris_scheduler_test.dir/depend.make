# Empty dependencies file for core_tetris_scheduler_test.
# This may be replaced when dependencies are built.
