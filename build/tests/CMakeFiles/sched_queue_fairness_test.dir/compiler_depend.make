# Empty compiler generated dependencies file for sched_queue_fairness_test.
# This may be replaced when dependencies are built.
