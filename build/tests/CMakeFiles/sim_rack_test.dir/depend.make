# Empty dependencies file for sim_rack_test.
# This may be replaced when dependencies are built.
