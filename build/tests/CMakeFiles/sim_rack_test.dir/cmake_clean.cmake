file(REMOVE_RECURSE
  "CMakeFiles/sim_rack_test.dir/sim/rack_test.cc.o"
  "CMakeFiles/sim_rack_test.dir/sim/rack_test.cc.o.d"
  "sim_rack_test"
  "sim_rack_test.pdb"
  "sim_rack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_rack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
