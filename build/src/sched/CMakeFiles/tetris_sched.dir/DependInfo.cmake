
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/common.cc" "src/sched/CMakeFiles/tetris_sched.dir/common.cc.o" "gcc" "src/sched/CMakeFiles/tetris_sched.dir/common.cc.o.d"
  "/root/repo/src/sched/drf_scheduler.cc" "src/sched/CMakeFiles/tetris_sched.dir/drf_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tetris_sched.dir/drf_scheduler.cc.o.d"
  "/root/repo/src/sched/fairness.cc" "src/sched/CMakeFiles/tetris_sched.dir/fairness.cc.o" "gcc" "src/sched/CMakeFiles/tetris_sched.dir/fairness.cc.o.d"
  "/root/repo/src/sched/random_scheduler.cc" "src/sched/CMakeFiles/tetris_sched.dir/random_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tetris_sched.dir/random_scheduler.cc.o.d"
  "/root/repo/src/sched/slot_scheduler.cc" "src/sched/CMakeFiles/tetris_sched.dir/slot_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tetris_sched.dir/slot_scheduler.cc.o.d"
  "/root/repo/src/sched/srtf_scheduler.cc" "src/sched/CMakeFiles/tetris_sched.dir/srtf_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tetris_sched.dir/srtf_scheduler.cc.o.d"
  "/root/repo/src/sched/upper_bound.cc" "src/sched/CMakeFiles/tetris_sched.dir/upper_bound.cc.o" "gcc" "src/sched/CMakeFiles/tetris_sched.dir/upper_bound.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tetris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tetris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
