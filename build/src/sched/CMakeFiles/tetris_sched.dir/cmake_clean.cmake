file(REMOVE_RECURSE
  "CMakeFiles/tetris_sched.dir/common.cc.o"
  "CMakeFiles/tetris_sched.dir/common.cc.o.d"
  "CMakeFiles/tetris_sched.dir/drf_scheduler.cc.o"
  "CMakeFiles/tetris_sched.dir/drf_scheduler.cc.o.d"
  "CMakeFiles/tetris_sched.dir/fairness.cc.o"
  "CMakeFiles/tetris_sched.dir/fairness.cc.o.d"
  "CMakeFiles/tetris_sched.dir/random_scheduler.cc.o"
  "CMakeFiles/tetris_sched.dir/random_scheduler.cc.o.d"
  "CMakeFiles/tetris_sched.dir/slot_scheduler.cc.o"
  "CMakeFiles/tetris_sched.dir/slot_scheduler.cc.o.d"
  "CMakeFiles/tetris_sched.dir/srtf_scheduler.cc.o"
  "CMakeFiles/tetris_sched.dir/srtf_scheduler.cc.o.d"
  "CMakeFiles/tetris_sched.dir/upper_bound.cc.o"
  "CMakeFiles/tetris_sched.dir/upper_bound.cc.o.d"
  "libtetris_sched.a"
  "libtetris_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetris_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
