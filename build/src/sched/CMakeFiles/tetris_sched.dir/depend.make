# Empty dependencies file for tetris_sched.
# This may be replaced when dependencies are built.
