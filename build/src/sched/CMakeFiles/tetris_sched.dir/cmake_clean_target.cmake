file(REMOVE_RECURSE
  "libtetris_sched.a"
)
