file(REMOVE_RECURSE
  "CMakeFiles/tetris_workload.dir/bing.cc.o"
  "CMakeFiles/tetris_workload.dir/bing.cc.o.d"
  "CMakeFiles/tetris_workload.dir/facebook.cc.o"
  "CMakeFiles/tetris_workload.dir/facebook.cc.o.d"
  "CMakeFiles/tetris_workload.dir/motivating.cc.o"
  "CMakeFiles/tetris_workload.dir/motivating.cc.o.d"
  "CMakeFiles/tetris_workload.dir/suite.cc.o"
  "CMakeFiles/tetris_workload.dir/suite.cc.o.d"
  "CMakeFiles/tetris_workload.dir/trace_io.cc.o"
  "CMakeFiles/tetris_workload.dir/trace_io.cc.o.d"
  "libtetris_workload.a"
  "libtetris_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetris_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
