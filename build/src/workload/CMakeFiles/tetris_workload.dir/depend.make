# Empty dependencies file for tetris_workload.
# This may be replaced when dependencies are built.
