
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/bing.cc" "src/workload/CMakeFiles/tetris_workload.dir/bing.cc.o" "gcc" "src/workload/CMakeFiles/tetris_workload.dir/bing.cc.o.d"
  "/root/repo/src/workload/facebook.cc" "src/workload/CMakeFiles/tetris_workload.dir/facebook.cc.o" "gcc" "src/workload/CMakeFiles/tetris_workload.dir/facebook.cc.o.d"
  "/root/repo/src/workload/motivating.cc" "src/workload/CMakeFiles/tetris_workload.dir/motivating.cc.o" "gcc" "src/workload/CMakeFiles/tetris_workload.dir/motivating.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/workload/CMakeFiles/tetris_workload.dir/suite.cc.o" "gcc" "src/workload/CMakeFiles/tetris_workload.dir/suite.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/tetris_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/tetris_workload.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tetris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tetris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
