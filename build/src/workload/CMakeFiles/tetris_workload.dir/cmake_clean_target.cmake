file(REMOVE_RECURSE
  "libtetris_workload.a"
)
