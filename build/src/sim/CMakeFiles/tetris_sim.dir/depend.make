# Empty dependencies file for tetris_sim.
# This may be replaced when dependencies are built.
