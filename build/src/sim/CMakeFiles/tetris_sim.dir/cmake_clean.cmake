file(REMOVE_RECURSE
  "CMakeFiles/tetris_sim.dir/machine.cc.o"
  "CMakeFiles/tetris_sim.dir/machine.cc.o.d"
  "CMakeFiles/tetris_sim.dir/placement.cc.o"
  "CMakeFiles/tetris_sim.dir/placement.cc.o.d"
  "CMakeFiles/tetris_sim.dir/result.cc.o"
  "CMakeFiles/tetris_sim.dir/result.cc.o.d"
  "CMakeFiles/tetris_sim.dir/simulator.cc.o"
  "CMakeFiles/tetris_sim.dir/simulator.cc.o.d"
  "CMakeFiles/tetris_sim.dir/spec.cc.o"
  "CMakeFiles/tetris_sim.dir/spec.cc.o.d"
  "libtetris_sim.a"
  "libtetris_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetris_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
