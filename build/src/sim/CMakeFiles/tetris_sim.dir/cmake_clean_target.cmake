file(REMOVE_RECURSE
  "libtetris_sim.a"
)
