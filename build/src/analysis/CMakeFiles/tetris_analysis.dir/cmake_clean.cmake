file(REMOVE_RECURSE
  "CMakeFiles/tetris_analysis.dir/export.cc.o"
  "CMakeFiles/tetris_analysis.dir/export.cc.o.d"
  "CMakeFiles/tetris_analysis.dir/metrics.cc.o"
  "CMakeFiles/tetris_analysis.dir/metrics.cc.o.d"
  "CMakeFiles/tetris_analysis.dir/workload_analysis.cc.o"
  "CMakeFiles/tetris_analysis.dir/workload_analysis.cc.o.d"
  "libtetris_analysis.a"
  "libtetris_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetris_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
