
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/export.cc" "src/analysis/CMakeFiles/tetris_analysis.dir/export.cc.o" "gcc" "src/analysis/CMakeFiles/tetris_analysis.dir/export.cc.o.d"
  "/root/repo/src/analysis/metrics.cc" "src/analysis/CMakeFiles/tetris_analysis.dir/metrics.cc.o" "gcc" "src/analysis/CMakeFiles/tetris_analysis.dir/metrics.cc.o.d"
  "/root/repo/src/analysis/workload_analysis.cc" "src/analysis/CMakeFiles/tetris_analysis.dir/workload_analysis.cc.o" "gcc" "src/analysis/CMakeFiles/tetris_analysis.dir/workload_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tetris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tetris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
