# Empty compiler generated dependencies file for tetris_analysis.
# This may be replaced when dependencies are built.
