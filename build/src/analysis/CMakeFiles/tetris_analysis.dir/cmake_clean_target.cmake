file(REMOVE_RECURSE
  "libtetris_analysis.a"
)
