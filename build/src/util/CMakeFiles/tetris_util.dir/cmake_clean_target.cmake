file(REMOVE_RECURSE
  "libtetris_util.a"
)
