file(REMOVE_RECURSE
  "CMakeFiles/tetris_util.dir/resources.cc.o"
  "CMakeFiles/tetris_util.dir/resources.cc.o.d"
  "CMakeFiles/tetris_util.dir/rng.cc.o"
  "CMakeFiles/tetris_util.dir/rng.cc.o.d"
  "CMakeFiles/tetris_util.dir/stats.cc.o"
  "CMakeFiles/tetris_util.dir/stats.cc.o.d"
  "CMakeFiles/tetris_util.dir/table.cc.o"
  "CMakeFiles/tetris_util.dir/table.cc.o.d"
  "libtetris_util.a"
  "libtetris_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetris_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
