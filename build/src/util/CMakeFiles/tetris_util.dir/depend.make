# Empty dependencies file for tetris_util.
# This may be replaced when dependencies are built.
