file(REMOVE_RECURSE
  "libtetris_core.a"
)
