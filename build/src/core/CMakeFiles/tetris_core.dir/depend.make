# Empty dependencies file for tetris_core.
# This may be replaced when dependencies are built.
