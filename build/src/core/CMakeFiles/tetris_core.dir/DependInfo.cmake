
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alignment.cc" "src/core/CMakeFiles/tetris_core.dir/alignment.cc.o" "gcc" "src/core/CMakeFiles/tetris_core.dir/alignment.cc.o.d"
  "/root/repo/src/core/demand_estimator.cc" "src/core/CMakeFiles/tetris_core.dir/demand_estimator.cc.o" "gcc" "src/core/CMakeFiles/tetris_core.dir/demand_estimator.cc.o.d"
  "/root/repo/src/core/tetris_scheduler.cc" "src/core/CMakeFiles/tetris_core.dir/tetris_scheduler.cc.o" "gcc" "src/core/CMakeFiles/tetris_core.dir/tetris_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/tetris_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tetris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tetris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
