file(REMOVE_RECURSE
  "CMakeFiles/tetris_core.dir/alignment.cc.o"
  "CMakeFiles/tetris_core.dir/alignment.cc.o.d"
  "CMakeFiles/tetris_core.dir/demand_estimator.cc.o"
  "CMakeFiles/tetris_core.dir/demand_estimator.cc.o.d"
  "CMakeFiles/tetris_core.dir/tetris_scheduler.cc.o"
  "CMakeFiles/tetris_core.dir/tetris_scheduler.cc.o.d"
  "libtetris_core.a"
  "libtetris_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetris_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
