file(REMOVE_RECURSE
  "CMakeFiles/tetris_tracker.dir/resource_tracker.cc.o"
  "CMakeFiles/tetris_tracker.dir/resource_tracker.cc.o.d"
  "CMakeFiles/tetris_tracker.dir/token_bucket.cc.o"
  "CMakeFiles/tetris_tracker.dir/token_bucket.cc.o.d"
  "libtetris_tracker.a"
  "libtetris_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tetris_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
