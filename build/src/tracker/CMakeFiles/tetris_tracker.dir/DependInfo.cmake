
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracker/resource_tracker.cc" "src/tracker/CMakeFiles/tetris_tracker.dir/resource_tracker.cc.o" "gcc" "src/tracker/CMakeFiles/tetris_tracker.dir/resource_tracker.cc.o.d"
  "/root/repo/src/tracker/token_bucket.cc" "src/tracker/CMakeFiles/tetris_tracker.dir/token_bucket.cc.o" "gcc" "src/tracker/CMakeFiles/tetris_tracker.dir/token_bucket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tetris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
