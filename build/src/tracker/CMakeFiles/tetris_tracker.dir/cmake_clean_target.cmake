file(REMOVE_RECURSE
  "libtetris_tracker.a"
)
