# Empty compiler generated dependencies file for tetris_tracker.
# This may be replaced when dependencies are built.
