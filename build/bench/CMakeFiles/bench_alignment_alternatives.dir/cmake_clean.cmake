file(REMOVE_RECURSE
  "CMakeFiles/bench_alignment_alternatives.dir/bench_alignment_alternatives.cc.o"
  "CMakeFiles/bench_alignment_alternatives.dir/bench_alignment_alternatives.cc.o.d"
  "bench_alignment_alternatives"
  "bench_alignment_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alignment_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
