file(REMOVE_RECURSE
  "CMakeFiles/bench_dag_depth.dir/bench_dag_depth.cc.o"
  "CMakeFiles/bench_dag_depth.dir/bench_dag_depth.cc.o.d"
  "bench_dag_depth"
  "bench_dag_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dag_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
