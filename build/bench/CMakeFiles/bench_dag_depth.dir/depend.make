# Empty dependencies file for bench_dag_depth.
# This may be replaced when dependencies are built.
