file(REMOVE_RECURSE
  "CMakeFiles/bench_ingestion.dir/bench_ingestion.cc.o"
  "CMakeFiles/bench_ingestion.dir/bench_ingestion.cc.o.d"
  "bench_ingestion"
  "bench_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
