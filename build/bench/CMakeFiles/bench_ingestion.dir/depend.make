# Empty dependencies file for bench_ingestion.
# This may be replaced when dependencies are built.
