# Empty dependencies file for bench_barrier_knob.
# This may be replaced when dependencies are built.
