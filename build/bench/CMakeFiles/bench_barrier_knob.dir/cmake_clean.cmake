file(REMOVE_RECURSE
  "CMakeFiles/bench_barrier_knob.dir/bench_barrier_knob.cc.o"
  "CMakeFiles/bench_barrier_knob.dir/bench_barrier_knob.cc.o.d"
  "bench_barrier_knob"
  "bench_barrier_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_barrier_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
