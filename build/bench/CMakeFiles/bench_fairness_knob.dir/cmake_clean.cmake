file(REMOVE_RECURSE
  "CMakeFiles/bench_fairness_knob.dir/bench_fairness_knob.cc.o"
  "CMakeFiles/bench_fairness_knob.dir/bench_fairness_knob.cc.o.d"
  "bench_fairness_knob"
  "bench_fairness_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fairness_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
