# Empty dependencies file for bench_fairness_knob.
# This may be replaced when dependencies are built.
