file(REMOVE_RECURSE
  "CMakeFiles/bench_oversubscription.dir/bench_oversubscription.cc.o"
  "CMakeFiles/bench_oversubscription.dir/bench_oversubscription.cc.o.d"
  "bench_oversubscription"
  "bench_oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
