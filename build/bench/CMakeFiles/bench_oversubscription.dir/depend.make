# Empty dependencies file for bench_oversubscription.
# This may be replaced when dependencies are built.
