# Empty dependencies file for fairness_tradeoff.
# This may be replaced when dependencies are built.
