file(REMOVE_RECURSE
  "CMakeFiles/fairness_tradeoff.dir/fairness_tradeoff.cpp.o"
  "CMakeFiles/fairness_tradeoff.dir/fairness_tradeoff.cpp.o.d"
  "fairness_tradeoff"
  "fairness_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
